// Package simrank is a from-scratch Go implementation of fast incremental
// SimRank on link-evolving graphs (Yu, Lin, Zhang — ICDE 2014), together
// with the batch algorithms and the SVD-based incremental baseline the
// paper evaluates against.
//
// SimRank scores node-pair similarity from link structure: "two nodes are
// similar if they are referenced by similar nodes". Computing it from
// scratch costs O(Kd'n²); this package instead maintains the scores under
// edge insertions and deletions in O(K(nd + |AFF|)) per update — exact,
// with pruning of the unaffected node-pairs.
//
// # Quick start
//
//	eng, err := simrank.NewEngine(4, []simrank.Edge{
//		{From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3},
//	}, simrank.Options{})
//	if err != nil { ... }
//	_ = eng.Similarity(0, 1)        // batch score
//	_, _ = eng.Insert(3, 2)         // incremental update (Inc-SR)
//	top := eng.TopK(10)             // most similar pairs after the update
//
// The update path implements Algorithm 2 (Inc-SR) of the paper; set
// Options.DisablePruning to fall back to Algorithm 1 (Inc-uSR), which
// touches all n² pairs. Both are exact: after any update sequence the
// scores match a batch recomputation to within the iterative truncation
// error C^{K+1}.
//
// # Compute core
//
// The engine owns a persistent compute workspace (internal/core): the
// transposed transition matrix Qᵀ is maintained incrementally — an edge
// change touches one row plus the d_j rescaled entries of column j, never
// an O(m) rebuild — and every scratch buffer of the update algorithms is
// pooled and reused, so a warm Engine.Apply performs zero heap
// allocations. Batch computation (NewEngine, Recompute, ApplyBatch's
// crossover) runs one row-partitioned sparse kernel (internal/matrix)
// that ping-pongs between two preallocated n×n buffers. Options.Workers
// sets the parallelism of both the batch kernel and the incremental
// update path: the update's term accumulation and store write-back
// partition by matrix row (no two workers share a cell, and within a
// cell the serial accumulation order is replayed exactly), so every
// worker count produces bit-identical results — serving answers,
// snapshots and WAL replay are byte-stable whatever the fan-out. With
// Workers = 0 updates auto-parallelize from n ≥ 2048 (GOMAXPROCS
// permitting) and stay serial below, where fan-out overhead dominates;
// SetWorkers resizes at runtime without racing in-flight updates. The
// persistent worker pool and per-worker scratch keep a warm parallel
// Apply at zero allocations. See README.md ("Parallel updates") for
// the partition scheme and the benchmark suite (go test -bench=.
// -benchmem).
//
// # Concurrency model
//
// ConcurrentEngine serves reads with epoch-based MVCC snapshot
// isolation: every committed mutation seals the engine's state into an
// immutable read view (sealed store + sealed graph + epoch) published
// through one atomic pointer, so readers acquire no lock and never wait
// on a writer — not on a streaming ApplyBatch, a Recompute, or another
// reader's O(n²) Similarities copy — and each view is one consistent
// point in time (Size returns a coherent (n, m); WriteSnapshot
// serializes the pinned view while the writer keeps committing).
// Sealing copies no similarity payload: the dense backend double-buffers
// and re-syncs only each update's dirty rows (warm Apply stays
// zero-allocation), packed copy-on-writes ~64 KiB triangle chunks, and
// approx copy-on-writes per-node walk rows, so a pinned view keeps
// serving its frozen walk set while the writer repairs past it. The
// plain Engine never seals and pays nothing.
// See the README's "Concurrency model" section for costs and the
// straggling-reader story.
//
// # Serving
//
// internal/server (run as cmd/simrankd) exposes the engine over
// HTTP/JSON: queries are answered lock-free off the published MVCC
// views, and POST /updates feeds an asynchronous coalescing pipeline
// that folds each burst of write requests through one ApplyBatch per
// drain cycle — one writer-mutex acquisition and one view publish for
// the whole burst, with opt-in synchronous completion (?wait=1) and an
// atomic snapshot/restore lifecycle (WriteSnapshotFile, the -snapshot
// and -restore flags). The listener can bind before the engine boots:
// /healthz is pure liveness while /readyz holds traffic until the first
// view publishes, and /stats reports epoch, view_age_ms and
// inflight_readers. See the README's "Serving" section for the endpoint
// table and semantics.
//
// # Durability
//
// Snapshots cover graceful shutdowns; the write-ahead log (internal/wal,
// simrankd's -wal-dir flag) covers crashes. Every committed mutation is
// appended — epoch-tagged, CRC-framed — before its view publishes, so
// boot equals restore-newest-snapshot plus ReplayWAL of the log tail,
// and a kill -9 loses nothing acknowledged (under -wal-sync=always; see
// the README's "Durability & crash recovery" section for the fsync
// policies, group commit, and the recovery semantics: torn tails are
// truncated, mid-log corruption fails the boot loudly). Successful
// snapshots truncate the covered segments. If an append fails the
// mutation stays committed and visible and the writer receives
// ErrDurability.
//
// # Replication
//
// Exact replay generalizes from crash recovery to read replicas: a
// leader running with a WAL serves it over GET /wal?from=<epoch>
// (backlog, then live tail, then heartbeats), and a follower
// (internal/replica, simrankd's -follow flag) applies each record
// through ApplyReplicated — the same path ReplayWAL uses — publishing
// one MVCC view per applied epoch and re-logging to its own WAL so a
// restart resumes from local disk. At the same epoch, leader and
// follower answers are bit-identical on every backend; followers
// reject writes with 409 naming the leader, gate /readyz on a lag
// bound, and fail loudly (rather than fork silently) when the stream
// can no longer extend their state. Epochs double as the replication
// position, so boot-time knob configuration must not advance them —
// that is what Engine.ConfigureRestored is for. See the README's
// "Replication" section.
//
// # Similarity-store backends
//
// The n×n similarity matrix is the system's memory wall, so the engine
// keeps it behind a pluggable store (internal/simstore) selected with
// Options.Backend: "dense" (the exact 8n²-byte baseline), "packed"
// (exact symmetric upper-triangular storage at ≈4n² — the same
// incremental machinery writing through a symmetric AddSym, warm Apply
// still allocation-free) and "approx" (no matrix at all: a writable
// Monte-Carlo tier over a stored-walk index in O(n·(W·L+d)) memory,
// answering queries deterministically with a reported standard error —
// the only backend that loads 100k+-node graphs). Approx absorbs edge
// updates by incremental walk repair: every walk position is a pure
// function of (graph, seed), so an update at node j resamples only the
// walk suffixes that pass through j — the affected fraction is j's
// walk-visit probability — at a cost of O(affected · remaining-steps)
// against the full O(n·W·L) resample, and lands bit-identically on what
// a fresh rebuild over the new graph would hold. Recompute remains the
// full resample for when the graph has churned wholesale. Snapshots
// carry a versioned header per backend and round-trip byte-identically;
// approx snapshots store only (budget, seed, repair generation) and
// rebuild the walks on restore. See the README's "Backends" section for
// the memory formulas and tier-selection guidance.
//
// # Query caching
//
// The read path scales through a dirty-row top-k cache
// (Options.TopKCacheRows, internal/cache, simrankd's -topk-cache flag):
// per-row TopKFor results and the global TopK are retained LRU-bounded
// and invalidated per update using exactly the affected rows the
// incremental core reports (UpdateStats.DirtyRows — the pruning
// machinery's "affected area", repurposed as an invalidation signal).
// Entries are epoch-stamped, so one cache serves every MVCC view
// concurrently: an entry answers a reader only when the row provably
// did not change between the entry's epoch and the reader's.
// Cached answers are bit-identical to fresh scans; CacheStats exposes
// hit/miss/invalidation counters, also served in GET /stats. Queries
// themselves never panic: out-of-range nodes and non-positive k yield
// zero results. See the README's "Query caching" subsection.
//
// # Static analysis
//
// The package's core invariants — sealed-view immutability,
// WAL-append-before-publish ordering, zero-allocation hot paths,
// determinism, dirty-row reporting, durability error handling — are
// proven at compile time by the repo's own analyzer suite:
// `go run ./cmd/simranklint ./...` (internal/analysis). Contracts and
// audited exceptions are annotated in source with //simrank:*
// directives; see the README's "Static analysis & invariants" section.
package simrank

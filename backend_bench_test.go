package simrank

import (
	"math/rand"
	"testing"
)

// BenchmarkBackends is the per-backend serving profile CI publishes as
// BENCH_backends.json: TopKFor latency with the store's resident bytes
// attached as a custom metric, so the memory/latency trade of the three
// tiers is tracked per commit on one n=2000 graph.
func BenchmarkBackends(b *testing.B) {
	const n = 2000
	rng := rand.New(rand.NewSource(90))
	var edges []Edge
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{From: i, To: (i + 1) % n})
	}
	for len(edges) < 3*n {
		edges = append(edges, Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	for _, backend := range []Backend{BackendDense, BackendPacked, BackendApprox} {
		b.Run(string(backend)+"/TopKFor", func(b *testing.B) {
			eng, err := NewEngine(n, edges, Options{K: 5, Backend: backend, ApproxWalks: 4})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.TopKFor(i%n, 10)
			}
			b.ReportMetric(float64(eng.StoreMemBytes()), "store-bytes")
		})
	}
}

package simrank

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// twoComponentEngine builds a small engine: nodes 0–3 wired as the
// left component, nodes 4–7 as the right. SimRank never couples the
// components, which is what makes invalidation precision observable.
func twoComponentEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	edges := []Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0}, {From: 0, To: 2},
		{From: 4, To: 5}, {From: 5, To: 6}, {From: 6, To: 7}, {From: 7, To: 4}, {From: 4, To: 6},
	}
	eng, err := NewEngine(8, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Queries must never panic: out-of-range and negative nodes yield the
// zero result, non-positive k yields nil — on the Engine and through the
// ConcurrentEngine wrappers. TopKFor(99, 5) on a 4-node engine was a
// reproducible slice-bounds panic before the guard.
func TestQueriesNeverPanic(t *testing.T) {
	eng, err := NewEngine(4, []Edge{{From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ceng := WrapEngine(eng)

	for _, a := range []int{-1, -99, 4, 99} {
		if got := eng.TopKFor(a, 5); got != nil {
			t.Fatalf("TopKFor(%d, 5) = %v, want nil", a, got)
		}
		if got := ceng.TopKFor(a, 5); got != nil {
			t.Fatalf("concurrent TopKFor(%d, 5) = %v, want nil", a, got)
		}
		if got := eng.Similarity(a, 0); got != 0 {
			t.Fatalf("Similarity(%d, 0) = %v, want 0", a, got)
		}
		if got := ceng.Similarity(0, a); got != 0 {
			t.Fatalf("concurrent Similarity(0, %d) = %v, want 0", a, got)
		}
		if eng.HasEdge(a, 2) || ceng.HasEdge(2, a) {
			t.Fatalf("HasEdge with node %d reported true", a)
		}
	}
	for _, k := range []int{0, -1} {
		if got := eng.TopK(k); got != nil {
			t.Fatalf("TopK(%d) = %v, want nil", k, got)
		}
		if got := eng.TopKFor(1, k); got != nil {
			t.Fatalf("TopKFor(1, %d) = %v, want nil", k, got)
		}
	}
	// Huge k is clamped to the candidate count, not trusted as a heap size.
	if got := eng.TopK(1 << 30); len(got) > 4*3/2 {
		t.Fatalf("TopK(huge) returned %d pairs", len(got))
	}
}

// A warm cached TopKFor must do zero similarity-row scans: RowMisses
// counts the scans actually performed and must hold still while repeat
// queries are served, and cached answers must equal fresh scans exactly.
func TestTopKForWarmCacheDoesZeroScans(t *testing.T) {
	cached := twoComponentEngine(t, Options{TopKCacheRows: 16})
	uncached := twoComponentEngine(t, Options{})

	for a := 0; a < 8; a++ { // cold pass: 8 misses fill the cache
		cached.TopKFor(a, 3)
	}
	if st := cached.CacheStats(); st.RowMisses != 8 || st.RowHits != 0 {
		t.Fatalf("cold pass stats %+v; want 8 misses, 0 hits", st)
	}
	for pass := 0; pass < 3; pass++ { // warm passes: zero scans
		for a := 0; a < 8; a++ {
			got, want := cached.TopKFor(a, 3), uncached.TopKFor(a, 3)
			if len(got) != len(want) {
				t.Fatalf("row %d: cached %v != fresh %v", a, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d entry %d: cached %+v != fresh %+v", a, i, got[i], want[i])
				}
			}
		}
	}
	st := cached.CacheStats()
	if st.RowMisses != 8 {
		t.Fatalf("warm passes performed %d scans beyond the cold 8", st.RowMisses-8)
	}
	if st.RowHits != 24 {
		t.Fatalf("RowHits = %d, want 24", st.RowHits)
	}
}

// Dirty-row invalidation is surgical: an update inside one component
// must not evict cached rows of the other. The left component's rows
// keep serving as hits; the updated component's rows miss and rescan.
func TestCacheInvalidationFollowsDirtyRows(t *testing.T) {
	for _, disablePruning := range []bool{false, true} {
		eng := twoComponentEngine(t, Options{TopKCacheRows: 16, DisablePruning: disablePruning})
		for a := 0; a < 8; a++ {
			eng.TopKFor(a, 3)
		}
		eng.TopK(4)
		base := eng.CacheStats()

		if _, err := eng.Insert(5, 7); err != nil { // right component only
			t.Fatal(err)
		}
		for _, r := range eng.LastStats().DirtyRows {
			if r < 4 {
				t.Fatalf("pruning=%v: update in right component dirtied left row %d", !disablePruning, r)
			}
		}

		eng.TopKFor(0, 3) // untouched row: must still be cached
		if st := eng.CacheStats(); st.RowHits != base.RowHits+1 || st.RowMisses != base.RowMisses {
			t.Fatalf("pruning=%v: left row rescanned after right-component update: %+v vs %+v",
				!disablePruning, st, base)
		}
		eng.TopKFor(5, 3) // dirty row: must rescan
		if st := eng.CacheStats(); st.RowMisses != base.RowMisses+1 {
			t.Fatalf("pruning=%v: dirty row served stale: %+v", !disablePruning, st)
		}
		if st := eng.CacheStats(); st.InvalidatedRows == 0 {
			t.Fatalf("pruning=%v: no rows recorded invalidated", !disablePruning)
		}
		// The global top-k is dropped by any dirty write.
		eng.TopK(4)
		if st := eng.CacheStats(); st.GlobalMisses != base.GlobalMisses+1 {
			t.Fatalf("pruning=%v: global served stale after update", !disablePruning)
		}
	}
}

// Recompute and AddNodes flush wholesale; snapshots restore with the
// cache off (a runtime knob), and SetTopKCacheRows re-enables it.
func TestCacheLifecycle(t *testing.T) {
	eng := twoComponentEngine(t, Options{TopKCacheRows: 16})
	eng.TopKFor(0, 3)
	eng.Recompute()
	if st := eng.CacheStats(); st.Flushes != 1 || st.Rows != 0 {
		t.Fatalf("Recompute did not flush: %+v", st)
	}
	if _, err := eng.AddNodes(2); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Flushes != 2 {
		t.Fatalf("AddNodes did not flush: %+v", st)
	}

	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored.TopKFor(0, 3)
	if st := restored.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("restored engine has a live cache: %+v", st)
	}
	restored.SetTopKCacheRows(8)
	restored.TopKFor(0, 3)
	restored.TopKFor(0, 3)
	if st := restored.CacheStats(); st.RowMisses != 1 || st.RowHits != 1 {
		t.Fatalf("re-enabled cache not serving: %+v", st)
	}
	restored.SetTopKCacheRows(0)
	if st := restored.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache still reporting: %+v", st)
	}
}

// Mutating a slice returned by a cached query must not corrupt later
// answers — the cache hands out copies.
func TestCachedResultsAreCallerOwned(t *testing.T) {
	eng := twoComponentEngine(t, Options{TopKCacheRows: 16})
	first := eng.TopKFor(0, 3) // miss: stored and cloned
	want := append([]Pair(nil), first...)
	first[0] = Pair{A: -1, B: -1, Score: -1}
	second := eng.TopKFor(0, 3) // hit: must be unaffected
	for i := range second {
		if second[i] != want[i] {
			t.Fatalf("cached answer corrupted by caller mutation: %v, want %v", second, want)
		}
	}
	second[0].Score = 42
	third := eng.TopKFor(0, 3)
	if third[0].Score == 42 {
		t.Fatal("hit-path slice aliases the cache")
	}

	g := eng.TopK(2)
	g[0] = Pair{A: -9, B: -9, Score: -9}
	if again := eng.TopK(2); again[0] == g[0] {
		t.Fatal("global hit-path slice aliases the cache")
	}
}

// Concurrent readers hammering cached queries while a writer streams
// updates: run under -race. Answers are checked for internal consistency
// (every returned pair names the queried row).
func TestConcurrentEngineCachedReadsUnderWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := randTestGraph(rng, 24, 96)
	ceng, err := NewConcurrentEngine(g.N(), g.Edges(), Options{K: 8, TopKCacheRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := (w*7 + i) % 24
				for _, p := range ceng.TopKFor(a, 5) {
					if p.A != a {
						panic("pair from a different row")
					}
				}
				ceng.TopK(5)
			}
		}(w)
	}
	edges := g.Edges()[:6]
	for pass := 0; pass < 20; pass++ {
		e := edges[pass%len(edges)]
		if _, err := ceng.Delete(e.From, e.To); err != nil {
			t.Fatal(err)
		}
		if _, err := ceng.Insert(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	st := ceng.CacheStats()
	if st.RowHits+st.RowMisses == 0 {
		t.Fatal("no cached reads recorded")
	}
}

// DirtyRows returned through the concurrent facade must be a detached
// copy: with the plain Engine's aliasing semantics, the next writer
// would rewrite the slice a previous caller still holds — a data race
// once the lock is gone. Sequential calls make the corruption
// deterministic to detect: the second update resets and rewrites the
// workspace scratch the first slice would otherwise alias.
func TestConcurrentUpdateStatsAreDetached(t *testing.T) {
	eng := twoComponentEngine(t, Options{})
	ceng := WrapEngine(eng)
	st1, err := ceng.Insert(5, 7) // right component: dirty rows all ≥ 4
	if err != nil {
		t.Fatal(err)
	}
	got := st1.DirtyRows
	snapshot := append([]int(nil), got...)
	if len(snapshot) == 0 {
		t.Fatal("insert dirtied no rows")
	}
	if _, err := ceng.Insert(1, 3); err != nil { // left component: rows < 4
		t.Fatal(err)
	}
	for i := range snapshot {
		if got[i] != snapshot[i] {
			t.Fatalf("DirtyRows rewritten by the next update: %v, want %v", got, snapshot)
		}
	}
}

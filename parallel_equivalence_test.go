package simrank

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

// TestParallelUpdateBitEquivalence is the determinism contract for the
// row-parallel incremental path: the SAME update stream applied at
// Workers ∈ {2, 4, 8} must leave every backend's store bit-identical
// to a serial (Workers=1) oracle after every single step — not merely
// close. The row partition never splits the accumulations into one
// cell across workers and replays the serial per-cell order through
// the claim-order ledger, so equality here is exact float equality.
// Run with -race in CI to also prove the fan-out is data-race free.
func TestParallelUpdateBitEquivalence(t *testing.T) {
	type cfg struct {
		backend        Backend
		disablePruning bool
	}
	cases := []cfg{
		{BackendDense, false},
		{BackendDense, true},
		{BackendPacked, false},
		{BackendPacked, true},
		// The approx tier has no pruning switch on its repair path; one
		// configuration covers it.
		{BackendApprox, false},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/pruning=%v", tc.backend, !tc.disablePruning)
		t.Run(name, func(t *testing.T) {
			opts := Options{K: 12, Backend: tc.backend, DisablePruning: tc.disablePruning, ApproxWalks: 32}
			rng := rand.New(rand.NewSource(int64(len(name))))
			model := &streamModel{n: 12 + rng.Intn(5), edges: make(map[Edge]bool)}
			for i := 0; i < model.n; i++ {
				for j := 0; j < model.n; j++ {
					if i != j && rng.Float64() < 0.15 {
						model.edges[Edge{From: i, To: j}] = true
					}
				}
			}
			edges := model.edgeList()

			newEng := func(workers int) *Engine {
				o := opts
				o.Workers = workers
				eng, err := NewEngine(model.n, edges, o)
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			oracle := newEng(1)
			defer oracle.Close()
			workerCounts := []int{2, 4, 8}
			parallel := make([]*Engine, len(workerCounts))
			for i, w := range workerCounts {
				parallel[i] = newEng(w)
				defer parallel[i].Close()
			}

			compare := func(step int, trace []string) {
				t.Helper()
				for i, par := range parallel {
					if tc.backend == BackendApprox {
						for a := 0; a < model.n; a++ {
							for b := 0; b < model.n; b++ {
								if got, want := par.Similarity(a, b), oracle.Similarity(a, b); got != want {
									t.Fatalf("workers=%d step %d: s(%d,%d) = %v, serial %v (trace %v)",
										workerCounts[i], step, a, b, got, want, trace)
								}
							}
						}
						continue
					}
					if d := matrix.MaxAbsDiff(par.Similarities(), oracle.Similarities()); d != 0 {
						t.Fatalf("workers=%d step %d: store drifted %g from serial oracle (trace %v)",
							workerCounts[i], step, d, trace)
					}
				}
			}

			var trace []string
			apply := func(ups []Update) {
				t.Helper()
				if err := oracle.ApplyBatch(ups); err != nil {
					t.Fatalf("oracle: %v (trace %v)", err, trace)
				}
				for i, par := range parallel {
					if err := par.ApplyBatch(ups); err != nil {
						t.Fatalf("workers=%d: %v (trace %v)", workerCounts[i], err, trace)
					}
				}
			}
			compare(-1, trace)
			for step := 0; step < 16; step++ {
				switch rng.Intn(4) {
				case 0, 1: // single update through the incremental path
					up := model.randomUpdate(rng)
					trace = append(trace, up.String())
					apply([]Update{up})
				case 2: // batch straddling the recompute crossover
					k := 1 + rng.Intn(5)
					ups := make([]Update, k)
					for i := range ups {
						ups[i] = model.randomUpdate(rng)
						trace = append(trace, ups[i].String())
					}
					apply(ups)
				case 3: // grow across the resize boundary, keep updating
					count := 1 + rng.Intn(2)
					trace = append(trace, fmt.Sprintf("addnodes(%d)", count))
					if _, err := oracle.AddNodes(count); err != nil {
						t.Fatal(err)
					}
					for _, par := range parallel {
						if _, err := par.AddNodes(count); err != nil {
							t.Fatal(err)
						}
					}
					model.n += count
				}
				compare(step, trace)
			}
		})
	}
}

// TestSetWorkersDuringUpdates is the -race regression test for the
// worker-pool resize path: SetWorkers used to swap the per-worker
// scratch while an in-flight Apply could still be fanning out over it.
// The fix serializes resizes with updates under the writer lock, so
// hammering both concurrently must produce no races and leave the
// store bit-identical to a serial replay of the same update sequence.
func TestSetWorkersDuringUpdates(t *testing.T) {
	const (
		n     = 24
		steps = 120
	)
	rng := rand.New(rand.NewSource(42))
	model := &streamModel{n: n, edges: make(map[Edge]bool)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.1 {
				model.edges[Edge{From: i, To: j}] = true
			}
		}
	}
	edges := model.edgeList()
	ups := make([]Update, steps)
	for i := range ups {
		ups[i] = model.randomUpdate(rng)
	}

	ce, err := NewConcurrentEngine(n, edges, Options{K: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // resize continuously while the writer streams updates
		defer wg.Done()
		for w := 0; ; w++ {
			select {
			case <-stop:
				return
			default:
				ce.SetWorkers(1 + w%4)
			}
		}
	}()
	for _, up := range ups {
		if _, err := ce.Apply(up); err != nil {
			close(stop)
			t.Fatalf("apply %v: %v", up, err)
		}
	}
	close(stop)
	wg.Wait()

	serial, err := NewEngine(n, edges, Options{K: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for _, up := range ups {
		if _, err := serial.Apply(up); err != nil {
			t.Fatal(err)
		}
	}
	if d := matrix.MaxAbsDiff(ce.Similarities(), serial.Similarities()); d != 0 {
		t.Fatalf("updates interleaved with SetWorkers drifted %g from serial replay", d)
	}
}

// Benchmarks regenerating each table and figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index), plus ablations of the two
// design decisions Section V-A calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks use the reduced dataset simulators so the whole suite is
// laptop-sized; cmd/experiments -full runs the full-size sweep.
package simrank

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/incsvd"
	"repro/internal/lin"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/montecarlo"
)

// benchSetup precomputes what a timed section needs: a dataset, its old
// similarities, and one applicable unit update.
type benchSetup struct {
	d   *gen.Dataset
	s   *matrix.Dense
	up  graph.Update
	ups []graph.Update
}

func setupDataset(b *testing.B, idx, delta int) benchSetup {
	b.Helper()
	d := gen.SmallDatasets()[idx]
	s := batch.MatrixForm(d.Base, exp.DampingC, d.K)
	ups := d.Delta(delta)
	return benchSetup{d: d, s: s, up: ups[0], ups: ups}
}

// --- FIG1: the Fig. 1 table --------------------------------------------------

func BenchmarkFig1Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP1a (Fig. 2a): per-update time, real datasets -------------------------

func benchIncSR(b *testing.B, idx int) {
	bs := setupDataset(b, idx, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.IncSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K); err != nil {
			b.Fatal(err)
		}
	}
}

func benchIncUSR(b *testing.B, idx int) {
	bs := setupDataset(b, idx, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.IncUSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K); err != nil {
			b.Fatal(err)
		}
	}
}

func benchIncSVD(b *testing.B, idx int) {
	bs := setupDataset(b, idx, 1)
	if !bs.d.SVDFeasible {
		b.Skip("Inc-SVD infeasible on this dataset (the paper's memory crash)")
	}
	// The initial factorization is offline precomputation in [1]; only
	// the factor update and reconstruction are timed.
	pristine, err := incsvd.New(bs.d.Base, exp.DampingC, exp.SVDTargetRank)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := pristine.Clone()
		if err := eng.Update(bs.d.Base, bs.up); err != nil {
			b.Fatal(err)
		}
		eng.Similarities()
	}
}

func benchBatch(b *testing.B, idx int) {
	bs := setupDataset(b, idx, 1)
	g := bs.d.Base.Clone()
	g.Apply(bs.up)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.PartialSumsShared(g, exp.DampingC, bs.d.K)
	}
}

func BenchmarkExp1IncSRDBLP(b *testing.B)  { benchIncSR(b, 0) }
func BenchmarkExp1IncSRCitH(b *testing.B)  { benchIncSR(b, 1) }
func BenchmarkExp1IncSRYouTu(b *testing.B) { benchIncSR(b, 2) }

func BenchmarkExp1IncUSRDBLP(b *testing.B)  { benchIncUSR(b, 0) }
func BenchmarkExp1IncUSRCitH(b *testing.B)  { benchIncUSR(b, 1) }
func BenchmarkExp1IncUSRYouTu(b *testing.B) { benchIncUSR(b, 2) }

func BenchmarkExp1IncSVDDBLP(b *testing.B) { benchIncSVD(b, 0) }
func BenchmarkExp1IncSVDCitH(b *testing.B) { benchIncSVD(b, 1) }

func BenchmarkExp1BatchDBLP(b *testing.B)  { benchBatch(b, 0) }
func BenchmarkExp1BatchCitH(b *testing.B)  { benchBatch(b, 1) }
func BenchmarkExp1BatchYouTu(b *testing.B) { benchBatch(b, 2) }

// --- EXP1c (Fig. 2c): synthetic insert/delete sweeps -------------------------

func BenchmarkExp1SynInsert(b *testing.B) {
	g := gen.ER(120, 600, 11)
	s := batch.MatrixForm(g, exp.DampingC, 10)
	ups := gen.InsertStream(g, 1, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.IncSR(g, s, ups[0], exp.DampingC, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExp1SynDelete(b *testing.B) {
	g := gen.ER(120, 600, 11)
	s := batch.MatrixForm(g, exp.DampingC, 10)
	ups := gen.DeleteStream(g, 1, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.IncSR(g, s, ups[0], exp.DampingC, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- FIG2b: lossless rank of the auxiliary matrix ---------------------------

func BenchmarkFig2bRank(b *testing.B) {
	bs := setupDataset(b, 0, 5)
	eng, err := incsvd.New(bs.d.Base, exp.DampingC, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AuxRankLossless(bs.d.Base, bs.up); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP2d/EXP2e (Fig. 2d/2e): pruning --------------------------------------

// BenchmarkExp2Pruning times the pruned and unpruned updates back to back
// and reports the affected-area fraction, the quantity behind Fig. 2d/2e.
func BenchmarkExp2Pruning(b *testing.B) {
	bs := setupDataset(b, 1, 1)
	var affected int
	b.Run("Inc-SR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st, err := core.IncSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K)
			if err != nil {
				b.Fatal(err)
			}
			affected = st.AffectedPairs
		}
		n := bs.d.Base.N()
		b.ReportMetric(metrics.AffectedRatio(affected, n), "affected-%")
	})
	b.Run("Inc-uSR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.IncUSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExp2Affected(b *testing.B) {
	bs := setupDataset(b, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := bs.d.Base.Clone()
		s := bs.s
		var err error
		for _, up := range bs.ups {
			s, _, err = core.IncSR(g, s, up, exp.DampingC, bs.d.K)
			if err != nil {
				b.Fatal(err)
			}
			g.Apply(up)
		}
	}
}

// --- EXP3 (Fig. 3): intermediate memory --------------------------------------

// BenchmarkExp3Memory reports the algorithms' intermediate footprint as a
// custom metric (aux-MB) alongside -benchmem's allocation counters.
func BenchmarkExp3Memory(b *testing.B) {
	bs := setupDataset(b, 0, 1)
	b.Run("Inc-SR", func(b *testing.B) {
		var aux int
		for i := 0; i < b.N; i++ {
			_, st, err := core.IncSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K)
			if err != nil {
				b.Fatal(err)
			}
			aux = st.AuxFloats
		}
		b.ReportMetric(float64(aux)*8/(1<<20), "aux-MB")
	})
	b.Run("Inc-uSR", func(b *testing.B) {
		var aux int
		for i := 0; i < b.N; i++ {
			_, st, err := core.IncUSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K)
			if err != nil {
				b.Fatal(err)
			}
			aux = st.AuxFloats
		}
		b.ReportMetric(float64(aux)*8/(1<<20), "aux-MB")
	})
	for _, r := range []int{5, 15, 25} {
		r := r
		pristine, err := incsvd.New(bs.d.Base, exp.DampingC, r)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("Inc-SVD-r"+itoa(r), func(b *testing.B) {
			var aux int
			for i := 0; i < b.N; i++ {
				eng := pristine.Clone()
				if err := eng.Update(bs.d.Base, bs.up); err != nil {
					b.Fatal(err)
				}
				aux = eng.AuxFloats() + bs.d.Base.N()*bs.d.Base.N()
			}
			b.ReportMetric(float64(aux)*8/(1<<20), "aux-MB")
		})
	}
}

func itoa(v int) string {
	if v == 5 {
		return "5"
	}
	if v == 15 {
		return "15"
	}
	return "25"
}

// --- EXP4 (Fig. 4): NDCG exactness -------------------------------------------

func BenchmarkExp4NDCG(b *testing.B) {
	bs := setupDataset(b, 0, 4)
	gNew := bs.d.Base.Clone()
	for _, up := range bs.ups {
		gNew.Apply(up)
	}
	ideal := batch.MatrixForm(gNew, exp.DampingC, 35)
	got := bs.s
	g := bs.d.Base.Clone()
	var err error
	for _, up := range bs.ups {
		got, _, err = core.IncSR(g, got, up, exp.DampingC, bs.d.K)
		if err != nil {
			b.Fatal(err)
		}
		g.Apply(up)
	}
	b.ResetTimer()
	var ndcg float64
	for i := 0; i < b.N; i++ {
		ndcg = metrics.NDCG(got, ideal, exp.NDCGTopK)
	}
	b.ReportMetric(ndcg, "NDCG30")
}

// --- Ablations (DESIGN.md §4) -------------------------------------------------

// naiveIncUSR realizes Eq. (15) with matrix-matrix multiplications
// (M_{k+1} = M₀ + C·Q̃·M_k·Q̃ᵀ) — the "conventional way" Section V-A
// contrasts the rank-one trick against.
func naiveIncUSR(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) *matrix.Dense {
	ro, err := core.Decompose(g, up)
	if err != nil {
		panic(err)
	}
	n := g.N()
	q := g.BackwardTransition().Dense()
	// Materialize Q̃ = Q + u·vᵀ.
	qt := q.Clone()
	matrix.AddOuter(qt, 1, ro.U.Dense(), ro.V.Dense())
	// w and γ exactly as IncUSR computes them (reusing the public pieces
	// would require exporting internals; the dense math is short enough
	// to restate).
	i, j := up.Edge.From, up.Edge.To
	w := q.MulVec(s.Col(i))
	lam := s.At(i, i) + s.At(j, j)/c - 2*w[j] - 1/c + 1
	dj := g.InDegree(j)
	gam := make([]float64, n)
	if up.Insert {
		if dj == 0 {
			copy(gam, w)
			gam[j] += 0.5 * s.At(i, i)
		} else {
			f := 1 / float64(dj+1)
			for bb := 0; bb < n; bb++ {
				gam[bb] = f * (w[bb] - s.At(bb, j)/c)
			}
			gam[j] += f * (lam/(2*float64(dj+1)) + 1/c - 1)
		}
	} else {
		panic("ablation bench only exercises insertion")
	}
	m0 := matrix.Outer(matrix.UnitVec(n, j), gam).Scale(c)
	m := m0.Clone()
	for it := 0; it < k; it++ {
		m = matrix.Mul(matrix.Mul(qt, m), qt.T()).Scale(c)
		m.AddMat(1, m0)
	}
	out := s.Clone()
	out.AddMat(1, m)
	out.AddMat(1, m.T())
	return out
}

// BenchmarkAblationRankOneVsMatMat contrasts the paper's rank-one
// vector iteration with the naive matrix-matrix realization of the same
// series — the core claim of Section V-A.
func BenchmarkAblationRankOneVsMatMat(b *testing.B) {
	bs := setupDataset(b, 0, 1)
	b.Run("rank-one", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.IncUSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mat-mat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveIncUSR(bs.d.Base, bs.s, bs.up, exp.DampingC, bs.d.K)
		}
	})
}

// BenchmarkAblationImplicitQtilde contrasts applying Q̃x = Qx + (vᵀx)u
// implicitly (no materialization) against rebuilding the updated
// transition matrix and multiplying with it.
func BenchmarkAblationImplicitQtilde(b *testing.B) {
	bs := setupDataset(b, 1, 1)
	g2 := bs.d.Base.Clone()
	g2.Apply(bs.up)
	x := make([]float64, g2.N())
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	ro, err := core.Decompose(bs.d.Base, bs.up)
	if err != nil {
		b.Fatal(err)
	}
	q := bs.d.Base.BackwardTransition()
	b.Run("implicit", func(b *testing.B) {
		uj := bs.up.Edge.To
		for i := 0; i < b.N; i++ {
			y := q.MulVec(x)
			y[uj] += ro.V.Dot(x) * ro.U.At(uj)
			_ = y
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qt := g2.BackwardTransition()
			_ = qt.MulVec(x)
		}
	})
}

// --- SVD substrate ------------------------------------------------------------

func BenchmarkSVDLossless(b *testing.B) {
	d := gen.SmallDatasets()[0]
	q := d.Base.BackwardTransition().Dense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.ComputeSVD(q, 1e-10)
	}
}

// BenchmarkBatchAlgorithms compares the three iterative-form batch
// algorithms (the [3] → [13] → [6] progression of Section II-B).
func BenchmarkBatchAlgorithms(b *testing.B) {
	g := gen.ER(100, 500, 17)
	b.Run("JehWidom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.JehWidom(g, 0.6, 5)
		}
	})
	b.Run("PartialSums", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.PartialSums(g, 0.6, 5)
		}
	})
	b.Run("PartialSumsShared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.PartialSumsShared(g, 0.6, 5)
		}
	})
	b.Run("MatrixForm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MatrixForm(g, 0.6, 5)
		}
	})
}

// --- Engine-level end-to-end --------------------------------------------------

func BenchmarkEngineInsert(b *testing.B) {
	d := gen.SmallDatasets()[0]
	eng, err := NewEngine(d.Base.N(), d.Base.Edges(), Options{C: exp.DampingC, K: d.K})
	if err != nil {
		b.Fatal(err)
	}
	up := d.Delta(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Insert(up.Edge.From, up.Edge.To); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Delete(up.Edge.From, up.Edge.To); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineUpdateStream measures sustained update throughput on a
// warm engine: a stream of deletes and re-inserts over a rotating edge
// set, the steady-state shape of a live link feed. The "persistent"
// variant is the engine hot path (workspace reuse + incremental Qᵀ; the
// allocs/op column must read 0); "perCall" is the seed behavior — a fresh
// workspace, Qᵀ rebuild and CSR sort on every update — kept as the
// baseline the tentpole is measured against.
func BenchmarkEngineUpdateStream(b *testing.B) {
	d := gen.SmallDatasets()[0]
	edges := d.Base.Edges()[:8]
	b.Run("persistent", func(b *testing.B) {
		eng, err := NewEngine(d.Base.N(), d.Base.Edges(), Options{C: exp.DampingC, K: d.K})
		if err != nil {
			b.Fatal(err)
		}
		// One warm-up pass grows every pooled buffer to its steady size.
		for _, e := range edges {
			if _, err := eng.Delete(e.From, e.To); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Insert(e.From, e.To); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edges[i%len(edges)]
			if _, err := eng.Delete(e.From, e.To); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Insert(e.From, e.To); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("perCall", func(b *testing.B) {
		g := d.Base.Clone()
		s := batch.MatrixForm(g, exp.DampingC, d.K)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edges[i%len(edges)]
			del := graph.Update{Edge: e, Insert: false}
			if _, err := core.IncSRInPlace(g, s, del, exp.DampingC, d.K); err != nil {
				b.Fatal(err)
			}
			g.Apply(del)
			ins := graph.Update{Edge: e, Insert: true}
			if _, err := core.IncSRInPlace(g, s, ins, exp.DampingC, d.K); err != nil {
				b.Fatal(err)
			}
			g.Apply(ins)
		}
	})
	// The row-parallel sweep: one engine per graph size, resized between
	// sub-benchmarks with SetWorkers so the expensive batch build runs
	// once. The n=4096 row is where the ISSUE's ≥2× target at workers=4
	// is measured (on a multi-core runner; a single-core box serializes
	// the fan-out and should show ≈1×, never a regression cliff).
	for _, n := range []int{1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := gen.PrefAttach(n, 4, 29)
			eng, err := NewEngine(g.N(), g.Edges(), Options{C: exp.DampingC, K: 10})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			streamEdges := g.Edges()[:8]
			toggle := func() {
				for _, e := range streamEdges {
					if _, err := eng.Delete(e.From, e.To); err != nil {
						b.Fatal(err)
					}
					if _, err := eng.Insert(e.From, e.To); err != nil {
						b.Fatal(err)
					}
				}
			}
			for _, workers := range []int{1, 2, 4, 8} {
				eng.SetWorkers(workers)
				toggle() // re-warm the pool and per-worker scratch at this width
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						toggle()
					}
				})
			}
		})
	}
}

// BenchmarkEngineRecompute measures the batch safety valve through the
// unified in-place kernel: sequential (zero allocations once warm) and
// GOMAXPROCS-parallel, on the same engine state.
func BenchmarkEngineRecompute(b *testing.B) {
	g := gen.PrefAttach(400, 6, 23)
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 5, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			eng.Recompute() // warm the workspace CSR + scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Recompute()
			}
		})
	}
}

// --- Parameter ablations --------------------------------------------------

// BenchmarkAblationDampingFactor sweeps C: larger damping factors slow
// convergence (error ∝ C^{K+1}) and enlarge the affected areas, so the
// incremental update grows more expensive.
func BenchmarkAblationDampingFactor(b *testing.B) {
	d := gen.SmallDatasets()[0]
	up := d.Delta(1)[0]
	for _, c := range []float64{0.4, 0.6, 0.8} {
		c := c
		name := "C=0.4"
		if c == 0.6 {
			name = "C=0.6"
		} else if c == 0.8 {
			name = "C=0.8"
		}
		b.Run(name, func(b *testing.B) {
			s := batch.MatrixForm(d.Base, c, d.K)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.IncSR(d.Base, s, up, c, d.K); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIterations sweeps K: per-update cost is linear in K
// while the residual shrinks as C^{K+1} (Section VI-A picks K=15 for
// C^K ≈ 5·10⁻⁴).
func BenchmarkAblationIterations(b *testing.B) {
	d := gen.SmallDatasets()[0]
	s := batch.MatrixForm(d.Base, exp.DampingC, 40)
	up := d.Delta(1)[0]
	for _, k := range []int{5, 15, 30} {
		k := k
		name := map[int]string{5: "K=5", 15: "K=15", 30: "K=30"}[k]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.IncSR(d.Base, s, up, exp.DampingC, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelBatch measures the goroutine-parallel matrix-form
// computation against the sequential one (the He et al. [8] analogue).
func BenchmarkParallelBatch(b *testing.B) {
	g := gen.PrefAttach(400, 6, 23)
	q := g.BackwardTransition()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MatrixFormQ(q, 0.6, 5)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MatrixFormParallel(q, 0.6, 5, 0)
		}
	})
}

// BenchmarkMonteCarloPair measures the probabilistic single-pair estimate
// (the related-work estimator family, Section II-B).
func BenchmarkMonteCarloPair(b *testing.B) {
	g := gen.PrefAttach(400, 6, 29)
	est, err := montecarlo.NewIndex(g, 0.6, 0, 100, 31)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Pair(10, 11, 100)
	}
}

// BenchmarkSnapshotRoundTrip measures engine persistence.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	d := gen.SmallDatasets()[0]
	eng, err := NewEngine(d.Base.N(), d.Base.Edges(), Options{C: exp.DampingC, K: d.K})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := eng.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Read-path query cache (ISSUE 3 tentpole) --------------------------------

// benchReadEngine builds the read-path benchmark fixture: a 2000-node
// preferential-attachment graph behind a ConcurrentEngine (the serving
// shape), with or without the top-k query cache.
func benchReadEngine(b *testing.B, cacheRows int) *ConcurrentEngine {
	b.Helper()
	g := gen.PrefAttach(2000, 3, 47)
	eng, err := NewConcurrentEngine(g.N(), g.Edges(), Options{C: 0.6, K: 5, TopKCacheRows: cacheRows})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// benchReadNodes is the rotating query set of the read benchmarks.
const benchReadNodes = 64

// BenchmarkTopKForCached measures warm cached TopKFor on n = 2000: every
// query after the warm-up is served from the per-row cache with zero
// similarity-row scans (the sibling Uncached benchmark is the O(n) scan
// it replaces; the quotient is the read-path speedup).
func BenchmarkTopKForCached(b *testing.B) {
	eng := benchReadEngine(b, 2048)
	for a := 0; a < benchReadNodes; a++ {
		eng.TopKFor(a, 10) // warm the cache
	}
	scansBefore := eng.CacheStats().RowMisses
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPairs = eng.TopKFor(i%benchReadNodes, 10)
	}
	b.StopTimer()
	if scans := eng.CacheStats().RowMisses - scansBefore; scans != 0 {
		b.Fatalf("warm cache performed %d row scans, want 0", scans)
	}
}

// BenchmarkTopKForUncached is the same workload straight off the row
// scan — the pre-cache read path.
func BenchmarkTopKForUncached(b *testing.B) {
	eng := benchReadEngine(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkPairs = eng.TopKFor(i%benchReadNodes, 10)
	}
}

// BenchmarkTopKForMixedReadHeavy interleaves one incremental write per
// 1024 reads — the read-heavy serving mix the cache targets. Writes
// invalidate only their dirty rows, so the cached variant keeps serving
// the untouched majority from memory.
func BenchmarkTopKForMixedReadHeavy(b *testing.B) {
	for _, cacheRows := range []int{2048, 0} {
		name := "cached"
		if cacheRows == 0 {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			eng := benchReadEngine(b, cacheRows)
			// Toggle real edges of the base graph: delete then re-insert,
			// so every write applies cleanly at any b.N.
			edges := gen.PrefAttach(2000, 3, 47).Edges()[:4]
			for a := 0; a < benchReadNodes; a++ {
				eng.TopKFor(a, 10)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 1023 {
					w := i / 1024
					e := edges[(w/2)%len(edges)]
					var err error
					if w%2 == 0 {
						_, err = eng.Delete(e.From, e.To)
					} else {
						_, err = eng.Insert(e.From, e.To)
					}
					if err != nil {
						b.Fatal(err)
					}
					continue
				}
				sinkPairs = eng.TopKFor(i%benchReadNodes, 10)
			}
		})
	}
}

// sinkPairs defeats dead-code elimination of the benchmarked queries.
var sinkPairs []Pair
